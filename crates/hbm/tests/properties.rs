//! Randomized (seeded, deterministic) tests for the HBM model: every
//! accepted access completes exactly once, and timing respects the
//! DRAM floor.

use equinox_exec::Rng;
use equinox_hbm::{HbmConfig, HbmStack, MemAccess};
use std::collections::BTreeSet;

const CASES: u64 = 32;

#[test]
fn accepted_accesses_complete_exactly_once() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x4B1, case);
        let n = rng.random_range(1usize..60);
        let addrs: Vec<(u64, bool)> = (0..n)
            .map(|_| (rng.random_range(0u64..1 << 20), rng.random::<bool>()))
            .collect();
        let cfg = HbmConfig::tiny();
        let mut stack = HbmStack::new(cfg);
        let mut accepted = BTreeSet::new();
        let mut pending: Vec<(u64, u64, bool)> = addrs
            .iter()
            .enumerate()
            .map(|(i, &(a, w))| (i as u64, a & !63, w))
            .collect();
        let mut done = BTreeSet::new();
        let floor = cfg.timing.t_cl + cfg.timing.t_burst;
        for t in 0..50_000u64 {
            pending.retain(|&(id, addr, write)| {
                if stack.enqueue(MemAccess { id, addr, write }, t).is_ok() {
                    accepted.insert(id);
                    false
                } else {
                    true
                }
            });
            stack.step(t);
            while let Some(c) = stack.pop_completed() {
                assert!(done.insert(c.id), "duplicate completion {}", c.id);
                assert!(c.finished_at >= floor, "faster than CAS+burst");
            }
            if pending.is_empty() && done.len() == accepted.len() {
                break;
            }
        }
        assert_eq!(done.len(), addrs.len(), "every access must finish");
        assert_eq!(stack.outstanding(), 0);
    }
}

#[test]
fn row_stats_account_for_all_accesses() {
    for case in 0..CASES {
        let mut rng = Rng::stream(0x4B2, case);
        let n = rng.random_range(1usize..40);
        let addrs: Vec<u64> = (0..n).map(|_| rng.random_range(0u64..1 << 18)).collect();
        let mut stack = HbmStack::new(HbmConfig::tiny());
        let mut submitted = 0u64;
        let mut i = 0usize;
        for t in 0..50_000u64 {
            if i < addrs.len()
                && stack
                    .enqueue(
                        MemAccess {
                            id: i as u64,
                            addr: addrs[i] & !63,
                            write: false,
                        },
                        t,
                    )
                    .is_ok()
            {
                submitted += 1;
                i += 1;
            }
            stack.step(t);
            while stack.pop_completed().is_some() {}
            if i == addrs.len() && stack.outstanding() == 0 {
                break;
            }
        }
        let (h, m, c) = stack.row_stats();
        assert_eq!(h + m + c, submitted, "every issue hits/misses/conflicts");
    }
}
