//! Dependency-free line-JSON (NDJSON) streaming sink.
//!
//! The live-telemetry leg of the observability layer: the simulator
//! writes one self-contained JSON object per line — `obs.sample/v1`
//! frames every sampling interval, one terminal `obs.summary/v1` frame
//! — to either a file (append mode) or a raw TCP connection
//! (`tcp:host:port`, hand-rolled on `std::net` per the workspace
//! zero-dependency rule). Each line goes out as a single `write_all`
//! call so concurrent writers on a local file interleave whole lines,
//! and a reader tailing the file never sees a torn frame boundary on
//! Linux pipes/files smaller than `PIPE_BUF`.
//!
//! Sink failures never abort a simulation: the first write error marks
//! the sink dead, subsequent writes are dropped, and the error count is
//! reported in the run's artifact so silent data loss is visible.

use std::io::Write;
use std::net::TcpStream;

/// Where frames go.
#[derive(Debug)]
enum Sink {
    File(std::fs::File),
    Tcp(TcpStream),
    /// A write failed; drop everything from here on.
    Dead,
}

/// Line-oriented JSON frame writer over a file or TCP sink.
#[derive(Debug)]
pub struct StreamWriter {
    sink: Sink,
    target: String,
    scratch: Vec<u8>,
    lines: u64,
    errors: u64,
}

impl StreamWriter {
    /// Opens a sink. `tcp:host:port` connects a TCP stream (the peer —
    /// e.g. `equinox watch` — must already be listening); anything else
    /// is a file path opened in create+append mode.
    pub fn open(target: &str) -> std::io::Result<Self> {
        let sink = match target.strip_prefix("tcp:") {
            Some(addr) => Sink::Tcp(TcpStream::connect(addr)?),
            None => Sink::File(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(target)?,
            ),
        };
        Ok(StreamWriter {
            sink,
            target: target.to_string(),
            scratch: Vec::with_capacity(4096),
            lines: 0,
            errors: 0,
        })
    }

    /// The target string the writer was opened with.
    pub fn target(&self) -> &str {
        &self.target
    }

    /// Writes one frame as a single line (a trailing `\n` is appended;
    /// `frame` itself must not contain newlines — the caller emits
    /// compact single-line JSON). One `write_all` per line.
    pub fn write_line(&mut self, frame: &str) {
        debug_assert!(!frame.contains('\n'), "frames must be single-line");
        self.scratch.clear();
        self.scratch.extend_from_slice(frame.as_bytes());
        self.scratch.push(b'\n');
        let res = match &mut self.sink {
            Sink::File(f) => f.write_all(&self.scratch),
            Sink::Tcp(s) => s.write_all(&self.scratch),
            Sink::Dead => {
                self.errors += 1;
                return;
            }
        };
        match res {
            Ok(()) => self.lines += 1,
            Err(_) => {
                self.errors += 1;
                self.sink = Sink::Dead;
            }
        }
    }

    /// Flushes the underlying sink (TCP streams buffer nothing, but
    /// file sinks may; called once at end of run).
    pub fn flush(&mut self) {
        let res = match &mut self.sink {
            Sink::File(f) => f.flush(),
            Sink::Tcp(s) => s.flush(),
            Sink::Dead => return,
        };
        if res.is_err() {
            self.errors += 1;
            self.sink = Sink::Dead;
        }
    }

    /// Frames successfully written.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Frames dropped on a dead or failing sink.
    pub fn errors(&self) -> u64 {
        self.errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn file_sink_writes_one_frame_per_line() {
        let dir = std::env::temp_dir().join("equinox_stream_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("frames.ndjson");
        let _ = std::fs::remove_file(&path);
        let mut w = StreamWriter::open(path.to_str().unwrap()).expect("open file sink");
        w.write_line(r#"{"schema": "obs.sample/v1", "cycle": 100}"#);
        w.write_line(r#"{"schema": "obs.summary/v1", "cycle": 200}"#);
        w.flush();
        assert_eq!(w.lines_written(), 2);
        assert_eq!(w.errors(), 0);
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("obs.sample/v1"));
        assert!(lines[1].contains("obs.summary/v1"));
        assert!(body.ends_with('\n'), "every frame is newline-terminated");
    }

    #[test]
    fn unopenable_path_is_an_error_not_a_panic() {
        assert!(StreamWriter::open("/nonexistent-dir/equinox/frames.ndjson").is_err());
    }

    #[test]
    fn refused_tcp_connection_is_an_error() {
        // Port 1 on localhost: connection refused (or permission denied)
        // everywhere we run tests.
        assert!(StreamWriter::open("tcp:127.0.0.1:1").is_err());
    }

    #[test]
    fn tcp_sink_delivers_lines_to_a_listener() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let (conn, _) = listener.accept().expect("accept");
            let mut lines = Vec::new();
            for line in BufReader::new(conn).lines() {
                lines.push(line.expect("read line"));
            }
            lines
        });
        let mut w = StreamWriter::open(&format!("tcp:{addr}")).expect("connect");
        w.write_line(r#"{"cycle": 1}"#);
        w.write_line(r#"{"cycle": 2}"#);
        w.flush();
        drop(w); // close the connection so the reader sees EOF
        let lines = reader.join().expect("reader thread");
        assert_eq!(lines, vec![r#"{"cycle": 1}"#, r#"{"cycle": 2}"#]);
    }
}
