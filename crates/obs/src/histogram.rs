//! Fixed-bucket histograms with interpolated percentiles.

/// A histogram over `u64` samples with bucket bounds fixed at
/// construction, so [`Histogram::record`] never allocates.
///
/// `bounds` are strictly increasing *upper* edges: bucket `i`
/// (`i < bounds.len()`) counts samples `v` with
/// `bounds[i-1] <= v < bounds[i]` (bucket 0 starts at 0), and one
/// implicit overflow bucket counts `v >= bounds[last]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "need at least one bucket bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: u64) {
        // Index of the first bound > v = the covering bucket.
        let i = self.bounds.partition_point(|&b| b <= v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The configured upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; the last is the
    /// overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Serializes the recorded values (per-bucket counts and the running
    /// aggregates). The bucket bounds are construction-time configuration
    /// and are *not* written; restore validates shape against them.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.counts.snap(e);
        e.put_u64(self.count);
        e.put_u64(self.sum);
        e.put_u64(self.min);
        e.put_u64(self.max);
    }

    /// Restores state written by [`Histogram::snap_state`] into a
    /// histogram constructed with the same bounds.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let counts: Vec<u64> = Vec::restore(d)?;
        if counts.len() != self.bounds.len() + 1 {
            return Err(SnapError::BadValue("histogram bucket count"));
        }
        self.counts = counts;
        self.count = d.u64()?;
        self.sum = d.u64()?;
        self.min = d.u64()?;
        self.max = d.u64()?;
        Ok(())
    }

    /// The `q`-quantile (`q` clamped to `0.0..=1.0`) by linear
    /// interpolation inside the covering bucket.
    ///
    /// With `target = q * count`, the covering bucket is the first
    /// non-empty bucket whose cumulative count reaches `target`; the
    /// returned value is `lo + (target - cum_before) / bucket_count *
    /// (hi - lo)`, where `[lo, hi)` are the bucket's edges (the
    /// overflow bucket interpolates up to the observed maximum).
    /// Returns 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let c = c as f64;
            if c > 0.0 && cum + c >= target {
                let lo = if i == 0 { 0.0 } else { self.bounds[i - 1] as f64 };
                let hi = if i < self.bounds.len() {
                    self.bounds[i] as f64
                } else {
                    (self.max as f64).max(lo)
                };
                let frac = ((target - cum) / c).clamp(0.0, 1.0);
                return lo + frac * (hi - lo);
            }
            cum += c;
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_values_land_in_the_right_bucket() {
        // Buckets: [0,10) [10,20) [20,30) [30,∞).
        let mut h = Histogram::new(&[10, 20, 30]);
        for v in [0, 9, 10, 19, 20, 29, 30, 1000] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
    }

    #[test]
    fn quantiles_interpolate_exactly() {
        // 100 samples uniform in bucket [0,100): quantile(q) must land
        // at exactly q*100 under the documented interpolation.
        let mut h = Histogram::new(&[100, 200]);
        for _ in 0..100 {
            h.record(50);
        }
        assert_eq!(h.quantile(0.5), 50.0);
        assert_eq!(h.quantile(0.95), 95.0);
        assert_eq!(h.quantile(0.99), 99.0);
        assert_eq!(h.quantile(1.0), 100.0);
    }

    #[test]
    fn quantiles_cross_buckets() {
        // 50 samples in [0,10), 50 in [10,20): the median sits exactly
        // on the shared edge, p75 in the middle of the second bucket.
        let mut h = Histogram::new(&[10, 20]);
        for _ in 0..50 {
            h.record(5);
        }
        for _ in 0..50 {
            h.record(15);
        }
        assert_eq!(h.quantile(0.5), 10.0);
        assert_eq!(h.quantile(0.75), 15.0);
    }

    #[test]
    fn overflow_bucket_interpolates_to_max() {
        let mut h = Histogram::new(&[10]);
        for _ in 0..10 {
            h.record(110); // all overflow; max = 110
        }
        assert_eq!(h.quantile(1.0), 110.0);
        assert_eq!(h.quantile(0.5), 60.0); // midway between bound and max
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new(&[1, 2]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }
}
