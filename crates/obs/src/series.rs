//! Interval time-series sampling into preallocated columns.

/// Handle to one registered series (column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// A columnar time series: one shared cycle axis plus any number of
/// named `f64` columns, all preallocated to a fixed row capacity so
/// [`TimeSeries::sample`] never allocates. When the capacity is
/// reached, further rows are counted in [`TimeSeries::dropped`]
/// instead of recorded (the run outlived its sampling budget).
#[derive(Debug)]
pub struct TimeSeries {
    interval: u64,
    capacity: usize,
    cycles: Vec<u64>,
    columns: Vec<(String, Vec<f64>)>,
    dropped: u64,
}

impl TimeSeries {
    /// Creates a sampler recording every `interval` cycles (min 1) with
    /// room for `capacity` rows.
    pub fn new(interval: u64, capacity: usize) -> Self {
        TimeSeries {
            interval: interval.max(1),
            capacity,
            cycles: Vec::with_capacity(capacity),
            columns: Vec::new(),
            dropped: 0,
        }
    }

    /// Registers a named column. Must happen before the first sample.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names or registration after sampling began.
    pub fn add(&mut self, name: &str) -> SeriesId {
        assert!(self.cycles.is_empty(), "register columns before sampling");
        assert!(
            self.columns.iter().all(|(n, _)| n != name),
            "duplicate series '{name}'"
        );
        self.columns
            .push((name.to_string(), Vec::with_capacity(self.capacity)));
        SeriesId(self.columns.len() - 1)
    }

    /// The configured sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Rows recorded so far.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when no rows are recorded.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }

    /// Rows refused because the capacity was exhausted.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records one row. `values` must supply every column in
    /// registration order. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `values.len()` differs from the column count.
    pub fn sample(&mut self, cycle: u64, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "one value per column");
        if self.cycles.len() >= self.capacity {
            self.dropped += 1;
            return;
        }
        self.cycles.push(cycle);
        for (col, &v) in self.columns.iter_mut().zip(values) {
            col.1.push(v);
        }
    }

    /// Serializes recorded rows and the dropped counter. Interval,
    /// capacity and column names are construction-time configuration
    /// and are not written.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        use equinox_snap::Snap;
        self.cycles.snap(e);
        e.put_usize(self.columns.len());
        for (_, vals) in &self.columns {
            vals.snap(e);
        }
        e.put_u64(self.dropped);
    }

    /// Restores state written by [`TimeSeries::snap_state`] into a
    /// sampler with the same registrations.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::{Snap, SnapError};
        let cycles: Vec<u64> = Vec::restore(d)?;
        if cycles.len() > self.capacity {
            return Err(SnapError::BadValue("series over capacity"));
        }
        if d.usize()? != self.columns.len() {
            return Err(SnapError::BadValue("series column count"));
        }
        let mut cols = Vec::with_capacity(self.columns.len());
        for _ in 0..self.columns.len() {
            let vals: Vec<f64> = Vec::restore(d)?;
            if vals.len() != cycles.len() {
                return Err(SnapError::BadValue("series column length"));
            }
            cols.push(vals);
        }
        self.cycles = cycles;
        for ((_, dst), src) in self.columns.iter_mut().zip(cols) {
            *dst = src;
        }
        self.dropped = d.u64()?;
        Ok(())
    }

    /// The shared cycle axis.
    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    /// One column's recorded values.
    pub fn values(&self, id: SeriesId) -> &[f64] {
        &self.columns[id.0].1
    }

    /// All columns `(name, values)` in registration order.
    pub fn columns(&self) -> impl Iterator<Item = (&str, &[f64])> {
        self.columns.iter().map(|(n, v)| (n.as_str(), v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_line_up_across_columns() {
        let mut ts = TimeSeries::new(100, 8);
        let a = ts.add("throughput");
        let b = ts.add("in_flight");
        ts.sample(100, &[1.0, 5.0]);
        ts.sample(200, &[2.0, 6.0]);
        assert_eq!(ts.cycles(), &[100, 200]);
        assert_eq!(ts.values(a), &[1.0, 2.0]);
        assert_eq!(ts.values(b), &[5.0, 6.0]);
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn capacity_overflow_counts_dropped_rows() {
        let mut ts = TimeSeries::new(1, 2);
        let _ = ts.add("x");
        ts.sample(1, &[1.0]);
        ts.sample(2, &[2.0]);
        ts.sample(3, &[3.0]);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped(), 1);
        assert_eq!(ts.cycles(), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "one value per column")]
    fn wrong_arity_rejected() {
        let mut ts = TimeSeries::new(1, 2);
        let _ = ts.add("x");
        ts.sample(1, &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "before sampling")]
    fn late_registration_rejected() {
        let mut ts = TimeSeries::new(1, 2);
        let _ = ts.add("x");
        ts.sample(1, &[1.0]);
        let _ = ts.add("y");
    }
}
