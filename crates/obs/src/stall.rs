//! Stall-cause taxonomy and per-router attribution grids.
//!
//! Every cycle a delivered packet spends between creation and ejection
//! is charged to exactly one named cause, so the per-cause totals sum
//! to the measured end-to-end latency per message class (on completed
//! runs; see DESIGN.md "Stall-cause taxonomy"). Causes split into two
//! layers:
//!
//! * charged by the router pipeline (this module's [`StallGrid`], fed
//!   by `equinox-noc`): [`NetCause::VcAlloc`], [`NetCause::SwitchLoss`],
//!   [`NetCause::CreditStarve`], [`NetCause::EjectWait`];
//! * charged by the system layer (`equinox-core`): injection-queue
//!   wait at the NI/EIR, and link serialization as the per-class
//!   residual (hop traversal + body-flit streaming — the cycles a
//!   packet is *moving*, not stalled).
//!
//! The grid is a flat `routers × causes` counter array: charging is a
//! single indexed add (no hashing, no allocation), matching the audit
//! pattern's obs-off zero-cost discipline — when attribution is off the
//! router pipeline holds no grid at all and pays one branch per event.

use equinox_snap::{Dec, Enc, Snap, SnapError};

/// Number of message classes attribution distinguishes
/// (0 = request, 1 = reply).
pub const STALL_CLASSES: usize = 2;

/// Canonical cause names in emission order, spanning both layers.
/// Artifact blocks and stream frames key their breakdown tables on
/// these exact strings.
pub const CAUSE_NAMES: [&str; 6] = [
    "inj_queue",
    "vc_alloc",
    "switch_loss",
    "credit_starve",
    "serialization",
    "eject_wait",
];

/// In-network stall causes charged per router by the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum NetCause {
    /// Head flit at the front of an input VC, pipeline delay elapsed,
    /// but virtual-channel allocation failed (no free output VC on the
    /// routed port).
    VcAlloc = 0,
    /// Head flit holds an output VC with credit available, but lost
    /// switch allocation this cycle (input- or output-stage arbitration).
    SwitchLoss = 1,
    /// Head flit holds an output VC but that VC has no downstream
    /// credit (or the ejection queue is full), so it cannot even bid
    /// for the switch.
    CreditStarve = 2,
    /// Tail flit sat in a router ejection queue waiting for the
    /// NI/CB-side sink to pop it.
    EjectWait = 3,
}

/// Number of in-network causes a [`StallGrid`] tracks.
pub const NET_CAUSES: usize = 4;

/// Names of the in-network causes, indexed by `NetCause as usize`.
pub const NET_CAUSE_NAMES: [&str; NET_CAUSES] =
    ["vc_alloc", "switch_loss", "credit_starve", "eject_wait"];

/// Per-router × per-cause stall-cycle counters plus per-class totals.
///
/// One network (subnet) owns one grid; the system layer merges grids
/// across subnets when emitting the `equinox.obs/v2` block. All values
/// are cycle-derived and therefore deterministic.
#[derive(Debug, Clone)]
pub struct StallGrid {
    routers: usize,
    /// `routers × NET_CAUSES`, row-major by router.
    cells: Vec<u64>,
    /// Per-class totals, `[class][cause]`.
    class_cycles: [[u64; NET_CAUSES]; STALL_CLASSES],
}

impl StallGrid {
    /// An all-zero grid for `routers` routers.
    pub fn new(routers: usize) -> Self {
        StallGrid {
            routers,
            cells: vec![0; routers * NET_CAUSES],
            class_cycles: [[0; NET_CAUSES]; STALL_CLASSES],
        }
    }

    /// Number of routers the grid covers.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Charges `cycles` stall cycles of `cause` to `router` on behalf
    /// of message class `class` (0 = request, 1 = reply).
    #[inline]
    pub fn charge(&mut self, router: usize, cause: NetCause, class: usize, cycles: u64) {
        self.cells[router * NET_CAUSES + cause as usize] += cycles;
        self.class_cycles[class][cause as usize] += cycles;
    }

    /// Stall cycles of `cause` charged to `router`.
    pub fn cell(&self, router: usize, cause: NetCause) -> u64 {
        self.cells[router * NET_CAUSES + cause as usize]
    }

    /// Total stall cycles of `cause` charged for `class`.
    pub fn class_total(&self, class: usize, cause: NetCause) -> u64 {
        self.class_cycles[class][cause as usize]
    }

    /// Total in-network stall cycles charged for `class`, all causes.
    pub fn class_sum(&self, class: usize) -> u64 {
        self.class_cycles[class].iter().sum()
    }

    /// Row-major per-router heat values for one cause.
    pub fn heat(&self, cause: NetCause) -> impl Iterator<Item = u64> + '_ {
        (0..self.routers).map(move |r| self.cell(r, cause))
    }

    /// Serializes the counters (shape is build-derived and validated on
    /// restore, not written).
    pub fn snap_state(&self, e: &mut Enc) {
        self.cells.snap(e);
        for class in &self.class_cycles {
            for &v in class {
                e.put_u64(v);
            }
        }
    }

    /// Restores counters written by [`StallGrid::snap_state`] into a
    /// grid of the same shape.
    pub fn restore_state(&mut self, d: &mut Dec) -> Result<(), SnapError> {
        let cells: Vec<u64> = Vec::restore(d)?;
        if cells.len() != self.cells.len() {
            return Err(SnapError::BadValue("stall grid shape"));
        }
        self.cells = cells;
        for class in &mut self.class_cycles {
            for v in class.iter_mut() {
                *v = d.u64()?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_router_and_per_class() {
        let mut g = StallGrid::new(4);
        g.charge(2, NetCause::VcAlloc, 0, 3);
        g.charge(2, NetCause::VcAlloc, 1, 1);
        g.charge(0, NetCause::EjectWait, 1, 5);
        assert_eq!(g.cell(2, NetCause::VcAlloc), 4);
        assert_eq!(g.cell(0, NetCause::EjectWait), 5);
        assert_eq!(g.cell(1, NetCause::SwitchLoss), 0);
        assert_eq!(g.class_total(0, NetCause::VcAlloc), 3);
        assert_eq!(g.class_total(1, NetCause::VcAlloc), 1);
        assert_eq!(g.class_sum(1), 6);
        let heat: Vec<u64> = g.heat(NetCause::VcAlloc).collect();
        assert_eq!(heat, vec![0, 0, 4, 0]);
    }

    #[test]
    fn snapshot_round_trips_and_rejects_shape_mismatch() {
        let mut g = StallGrid::new(3);
        g.charge(1, NetCause::CreditStarve, 0, 7);
        g.charge(2, NetCause::SwitchLoss, 1, 2);
        let mut e = Enc::new();
        g.snap_state(&mut e);
        let bytes = e.into_bytes();

        let mut back = StallGrid::new(3);
        back.restore_state(&mut Dec::new(&bytes)).expect("restore");
        assert_eq!(back.cell(1, NetCause::CreditStarve), 7);
        assert_eq!(back.class_total(1, NetCause::SwitchLoss), 2);

        let mut wrong = StallGrid::new(5);
        assert!(wrong.restore_state(&mut Dec::new(&bytes)).is_err());
    }

    #[test]
    fn cause_name_tables_are_consistent() {
        assert_eq!(NET_CAUSE_NAMES[NetCause::VcAlloc as usize], "vc_alloc");
        assert_eq!(NET_CAUSE_NAMES[NetCause::SwitchLoss as usize], "switch_loss");
        assert_eq!(NET_CAUSE_NAMES[NetCause::CreditStarve as usize], "credit_starve");
        assert_eq!(NET_CAUSE_NAMES[NetCause::EjectWait as usize], "eject_wait");
        // Every in-network cause appears in the canonical emission list.
        for n in NET_CAUSE_NAMES {
            assert!(CAUSE_NAMES.contains(&n));
        }
    }
}
