//! Chrome trace-event JSON writer.
//!
//! Emits the subset of the trace-event format understood by Perfetto
//! and `chrome://tracing`: complete events (`"ph":"X"`) for spans,
//! instant events (`"ph":"i"`) for point occurrences, and metadata
//! events naming processes/threads. Timestamps are microseconds
//! (`f64`); the caller chooses what a microsecond means per process
//! (wall-clock spans on one pid, simulated cycles on another).

/// Incremental builder for one trace file.
#[derive(Debug)]
pub struct ChromeTrace {
    buf: String,
    any: bool,
}

fn push_escaped(buf: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\t' => buf.push_str("\\t"),
            '\r' => buf.push_str("\\r"),
            c if (c as u32) < 0x20 => buf.push_str(&format!("\\u{:04x}", c as u32)),
            c => buf.push(c),
        }
    }
}

fn push_num(buf: &mut String, v: f64) {
    if v.is_finite() {
        buf.push_str(&format!("{v}"));
    } else {
        buf.push('0');
    }
}

impl Default for ChromeTrace {
    fn default() -> Self {
        Self::new()
    }
}

impl ChromeTrace {
    /// Starts an empty trace.
    pub fn new() -> Self {
        ChromeTrace {
            buf: String::from("{\"traceEvents\": ["),
            any: false,
        }
    }

    fn open_event(&mut self, ph: char, name: &str, pid: u64, tid: u64) {
        if self.any {
            self.buf.push_str(", ");
        }
        self.any = true;
        self.buf.push_str("{\"ph\": \"");
        self.buf.push(ph);
        self.buf.push_str("\", \"name\": \"");
        push_escaped(&mut self.buf, name);
        self.buf
            .push_str(&format!("\", \"pid\": {pid}, \"tid\": {tid}"));
    }

    fn push_args(&mut self, args: &[(&str, f64)]) {
        if args.is_empty() {
            return;
        }
        self.buf.push_str(", \"args\": {");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                self.buf.push_str(", ");
            }
            self.buf.push('"');
            push_escaped(&mut self.buf, k);
            self.buf.push_str("\": ");
            push_num(&mut self.buf, *v);
        }
        self.buf.push('}');
    }

    /// Names a process in the timeline.
    pub fn process_name(&mut self, pid: u64, name: &str) {
        self.open_event('M', "process_name", pid, 0);
        self.buf.push_str(", \"args\": {\"name\": \"");
        push_escaped(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    /// Names a thread (track) in the timeline.
    pub fn thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        self.open_event('M', "thread_name", pid, tid);
        self.buf.push_str(", \"args\": {\"name\": \"");
        push_escaped(&mut self.buf, name);
        self.buf.push_str("\"}}");
    }

    /// A complete event (`ph: X`): `ts`/`dur` in microseconds.
    pub fn complete(
        &mut self,
        name: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        self.open_event('X', name, pid, tid);
        self.buf.push_str(", \"ts\": ");
        push_num(&mut self.buf, ts_us);
        self.buf.push_str(", \"dur\": ");
        push_num(&mut self.buf, dur_us);
        self.push_args(args);
        self.buf.push('}');
    }

    /// An instant event (`ph: i`, thread scope).
    pub fn instant(&mut self, name: &str, pid: u64, tid: u64, ts_us: f64, args: &[(&str, f64)]) {
        self.open_event('i', name, pid, tid);
        self.buf.push_str(", \"ts\": ");
        push_num(&mut self.buf, ts_us);
        self.buf.push_str(", \"s\": \"t\"");
        self.push_args(args);
        self.buf.push('}');
    }

    /// Closes the trace and returns the JSON document.
    pub fn finish(mut self) -> String {
        self.buf.push_str("]}");
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_form_a_json_document() {
        let mut t = ChromeTrace::new();
        t.process_name(1, "phases");
        t.thread_name(1, 1, "step");
        t.complete("cb_tick", 1, 1, 10.0, 2.5, &[("cycle", 42.0)]);
        t.instant("inject", 2, 1, 100.0, &[("pkt", 7.0), ("seq", 0.0)]);
        let s = t.finish();
        assert!(s.starts_with("{\"traceEvents\": ["));
        assert!(s.ends_with("]}"));
        assert!(s.contains("\"ph\": \"X\""));
        assert!(s.contains("\"ph\": \"i\""));
        assert!(s.contains("\"dur\": 2.5"));
        assert!(s.contains("\"args\": {\"pkt\": 7, \"seq\": 0}"));
        // Balanced braces/brackets (cheap well-formedness check; the
        // bench E2E tests parse the real export with the JSON parser).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn names_are_escaped() {
        let mut t = ChromeTrace::new();
        t.instant("a\"b\\c", 1, 1, 0.0, &[]);
        let s = t.finish();
        assert!(s.contains("a\\\"b\\\\c"));
    }

    #[test]
    fn hostile_names_survive_every_emission_path() {
        // Quotes, backslashes, newlines/tabs and raw control characters
        // must be escaped on every path a caller-supplied string takes
        // into the document: event names, process/thread metadata names
        // and args keys. Perfetto rejects the whole file on a single
        // unescaped byte, so this is load-bearing for the exporter.
        let hostile = "evil\"name\\with\nnew\tline\r\u{0001}ctl";
        let mut t = ChromeTrace::new();
        t.process_name(1, hostile);
        t.thread_name(1, 2, hostile);
        t.complete(hostile, 1, 2, 1.0, 2.0, &[(hostile, 3.0)]);
        t.instant(hostile, 1, 2, 4.0, &[(hostile, 5.0)]);
        let s = t.finish();
        // No raw control bytes or unescaped quotes may survive: every
        // '"' in the document must be structural or preceded by '\'.
        assert!(!s.contains('\n') && !s.contains('\t') && !s.contains('\r'));
        assert!(!s.contains('\u{0001}'), "raw control char leaked");
        assert!(s.contains("evil\\\"name\\\\with\\nnew\\tline\\r\\u0001ctl"));
        assert_eq!(s.matches("evil").count(), 6, "all six emission paths escaped");
        // Structural sanity: braces/brackets still balance after the
        // hostile input (backslash-escape bugs typically break this).
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert_eq!(s.matches('[').count(), s.matches(']').count());
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(ChromeTrace::new().finish(), "{\"traceEvents\": []}");
    }
}
