//! Wall-clock span profiling for the phases of a simulation step.
//!
//! Spans are registered once by name; each recording updates per-span
//! aggregates (call count, total nanoseconds) and appends to a bounded
//! event ring kept for timeline export. Wall-clock data is
//! nondeterministic by nature: export it to trace files, never into
//! artifacts compared bit-for-bit.

use std::time::Instant;

/// Handle to one registered span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(pub(crate) usize);

impl SpanId {
    /// The span's registration index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// One recorded span occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanEvent {
    /// Which span.
    pub span: SpanId,
    /// Caller-chosen sub-track (e.g. subnet index) for timeline export.
    pub track: u64,
    /// Start, nanoseconds since the profiler's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Simulation cycle at which the span ended.
    pub cycle: u64,
}

/// The profiler: per-span aggregates plus a drop-oldest event ring of
/// capacity fixed at construction (recording never allocates).
#[derive(Debug)]
pub struct SpanProfiler {
    names: Vec<String>,
    total_ns: Vec<u64>,
    calls: Vec<u64>,
    ring: Vec<SpanEvent>,
    cap: usize,
    /// Oldest element once the ring is full (next overwrite target).
    head: usize,
    overwritten: u64,
    epoch: Instant,
}

impl SpanProfiler {
    /// Creates a profiler whose event ring holds up to `capacity`
    /// events (0 keeps aggregates only).
    pub fn new(capacity: usize) -> Self {
        SpanProfiler {
            names: Vec::new(),
            total_ns: Vec::new(),
            calls: Vec::new(),
            ring: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            overwritten: 0,
            epoch: Instant::now(),
        }
    }

    /// Registers a span name.
    ///
    /// # Panics
    ///
    /// Panics on duplicate names.
    pub fn register(&mut self, name: &str) -> SpanId {
        assert!(self.names.iter().all(|n| n != name), "duplicate span '{name}'");
        self.names.push(name.to_string());
        self.total_ns.push(0);
        self.calls.push(0);
        SpanId(self.names.len() - 1)
    }

    /// Nanoseconds since the profiler's epoch — the start token for a
    /// later [`SpanProfiler::record`].
    #[inline]
    pub fn start(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The profiler's epoch. Threads that cannot hold a reference to
    /// the profiler (e.g. worker lanes stepping subnets in parallel)
    /// capture timestamps against this instant (`epoch().elapsed()`)
    /// and hand them back to the owner for a deterministic-order fold
    /// via [`SpanProfiler::record_closed`].
    #[inline]
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Closes a span opened at `start_ns` (from [`SpanProfiler::start`])
    /// and records it. Allocation-free.
    pub fn record(&mut self, span: SpanId, track: u64, start_ns: u64, cycle: u64) {
        let now = self.epoch.elapsed().as_nanos() as u64;
        self.record_closed(span, track, start_ns, now, cycle);
    }

    /// Records a span whose **end** timestamp was captured by the
    /// caller (nanoseconds since [`SpanProfiler::epoch`], like the
    /// start). This is the fold half of off-thread span capture: lanes
    /// stamp `(start, end)` pairs into their own scratch, the owner
    /// records them in a deterministic order. Allocation-free.
    pub fn record_closed(&mut self, span: SpanId, track: u64, start_ns: u64, end_ns: u64, cycle: u64) {
        let dur_ns = end_ns.saturating_sub(start_ns);
        self.total_ns[span.0] += dur_ns;
        self.calls[span.0] += 1;
        let ev = SpanEvent {
            span,
            track,
            start_ns,
            dur_ns,
            cycle,
        };
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else if self.cap > 0 {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// A span's name.
    pub fn name(&self, span: SpanId) -> &str {
        &self.names[span.0]
    }

    /// Per-span aggregates `(name, calls, total_ns)` in registration
    /// order.
    pub fn summary(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.names
            .iter()
            .zip(&self.calls)
            .zip(&self.total_ns)
            .map(|((n, &c), &t)| (n.as_str(), c, t))
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &SpanEvent> {
        let (newer, older) = self.ring.split_at(self.head.min(self.ring.len()));
        older.iter().chain(newer.iter())
    }

    /// Events dropped to the ring bound (oldest-overwritten count).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_accumulate() {
        let mut p = SpanProfiler::new(8);
        let a = p.register("phase_a");
        let t0 = p.start();
        p.record(a, 0, t0, 1);
        let t1 = p.start();
        p.record(a, 0, t1, 2);
        let (name, calls, _total) = p.summary().next().unwrap();
        assert_eq!((name, calls), ("phase_a", 2));
        assert_eq!(p.events().count(), 2);
    }

    #[test]
    fn ring_overwrites_oldest() {
        let mut p = SpanProfiler::new(2);
        let a = p.register("a");
        for cycle in 0..5 {
            p.record(a, 0, p.start(), cycle);
        }
        let cycles: Vec<u64> = p.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![3, 4]);
        assert_eq!(p.overwritten(), 3);
    }

    #[test]
    fn closed_spans_fold_with_explicit_endpoints() {
        let mut p = SpanProfiler::new(4);
        let a = p.register("net0");
        // Endpoints captured elsewhere (relative to p.epoch()).
        p.record_closed(a, 0, 100, 350, 9);
        let ev = *p.events().next().unwrap();
        assert_eq!((ev.start_ns, ev.dur_ns, ev.cycle), (100, 250, 9));
        let (_, calls, total) = p.summary().next().unwrap();
        assert_eq!((calls, total), (1, 250));
        // Clock skew between lanes must never underflow.
        p.record_closed(a, 0, 500, 400, 10);
        assert_eq!(p.summary().next().unwrap().2, 250);
    }

    #[test]
    fn zero_capacity_keeps_aggregates_only() {
        let mut p = SpanProfiler::new(0);
        let a = p.register("a");
        p.record(a, 0, p.start(), 7);
        assert_eq!(p.events().count(), 0);
        assert_eq!(p.summary().next().unwrap().1, 1);
    }
}
