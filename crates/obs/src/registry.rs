//! The metrics registry: named counters, gauges and histograms behind
//! integer handles.
//!
//! Registration (naming) happens once, at construction time, and
//! allocates; recording goes through the returned copyable handles and
//! is a bare vector index — no hashing, no allocation, suitable for the
//! simulator's hot loop.

use crate::histogram::Histogram;

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A set of named metrics. Names are unique per kind.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter (starts at 0).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate counter name.
    pub fn counter(&mut self, name: &str) -> CounterId {
        assert!(
            self.counters.iter().all(|(n, _)| n != name),
            "duplicate counter '{name}'"
        );
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Registers a gauge (starts at 0.0).
    ///
    /// # Panics
    ///
    /// Panics on a duplicate gauge name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        assert!(
            self.gauges.iter().all(|(n, _)| n != name),
            "duplicate gauge '{name}'"
        );
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers a histogram with the given bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate histogram name or invalid bounds.
    pub fn histogram(&mut self, name: &str, bounds: &[u64]) -> HistogramId {
        assert!(
            self.histograms.iter().all(|(n, _)| n != name),
            "duplicate histogram '{name}'"
        );
        self.histograms.push((name.to_string(), Histogram::new(bounds)));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `by` to a counter. Allocation-free.
    #[inline]
    pub fn inc(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Sets a gauge. Allocation-free.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// Records one histogram sample. Allocation-free.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        self.histograms[id.0].1.record(v);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// A registered histogram.
    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Serializes every metric's *value* in registration order. Names
    /// and histogram bounds are registration-time configuration and are
    /// not written; restore validates counts against this registry's
    /// registrations.
    pub fn snap_state(&self, e: &mut equinox_snap::Enc) {
        e.put_usize(self.counters.len());
        for (_, v) in &self.counters {
            e.put_u64(*v);
        }
        e.put_usize(self.gauges.len());
        for (_, v) in &self.gauges {
            e.put_f64(*v);
        }
        e.put_usize(self.histograms.len());
        for (_, h) in &self.histograms {
            h.snap_state(e);
        }
    }

    /// Restores state written by [`Registry::snap_state`] into a
    /// registry with the same registrations.
    pub fn restore_state(
        &mut self,
        d: &mut equinox_snap::Dec,
    ) -> Result<(), equinox_snap::SnapError> {
        use equinox_snap::SnapError;
        if d.usize()? != self.counters.len() {
            return Err(SnapError::BadValue("registry counter count"));
        }
        for (_, v) in &mut self.counters {
            *v = d.u64()?;
        }
        if d.usize()? != self.gauges.len() {
            return Err(SnapError::BadValue("registry gauge count"));
        }
        for (_, v) in &mut self.gauges {
            *v = d.f64()?;
        }
        if d.usize()? != self.histograms.len() {
            return Err(SnapError::BadValue("registry histogram count"));
        }
        for (_, h) in &mut self.histograms {
            h.restore_state(d)?;
        }
        Ok(())
    }

    /// All counters `(name, value)` in registration order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All gauges `(name, value)` in registration order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// All histograms `(name, histogram)` in registration order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(n, h)| (n.as_str(), h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip() {
        let mut r = Registry::new();
        let c = r.counter("flits");
        let g = r.gauge("load");
        let h = r.histogram("lat", &[10, 100]);
        r.inc(c, 3);
        r.inc(c, 4);
        r.set(g, 0.5);
        r.observe(h, 7);
        r.observe(h, 70);
        assert_eq!(r.counter_value(c), 7);
        assert_eq!(r.gauge_value(g), 0.5);
        assert_eq!(r.histogram_ref(h).count(), 2);
        assert_eq!(r.counters().collect::<Vec<_>>(), vec![("flits", 7)]);
        assert_eq!(r.histograms().next().unwrap().0, "lat");
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_counter_names_rejected() {
        let mut r = Registry::new();
        let _ = r.counter("x");
        let _ = r.counter("x");
    }
}
