#![warn(missing_docs)]
//! `equinox-obs` — a dependency-free observability layer.
//!
//! The simulator's end-of-run aggregates (`RunMetrics`, `NetStats`)
//! answer *how much*; diagnosing a congestion pathology or a perf
//! regression needs *when* and *where*. This crate supplies the four
//! building blocks the system simulator threads through its hot loop:
//!
//! * [`Registry`] — named counters, gauges and fixed-bucket
//!   [`Histogram`]s addressed by integer handles, so the hot path never
//!   hashes a string or allocates.
//! * [`TimeSeries`] — an interval sampler recording one row of named
//!   series every N cycles into buffers sized at construction.
//! * [`SpanProfiler`] — wall-clock phase timings (aggregates plus a
//!   bounded event ring) for the stages of a simulation step.
//! * [`ChromeTrace`] — a writer for the Chrome trace-event JSON format
//!   (loadable in Perfetto / `chrome://tracing`), used to export span
//!   events and per-flit NoC trace events onto one timeline.
//! * [`StallGrid`] — per-router × per-cause stall-cycle attribution
//!   counters (the `obs/v2` layer), charged by the router pipeline.
//! * [`StreamWriter`] — a line-JSON (NDJSON) frame sink over a file or
//!   raw TCP connection, for live mid-run telemetry.
//!
//! Everything here is plain `std`: registration allocates, recording
//! does not. Wall-clock data ([`SpanProfiler`]) is inherently
//! nondeterministic and must only be exported to trace files, never
//! into artifacts that are compared bit-for-bit across runs; the
//! cycle-derived structures ([`Registry`], [`TimeSeries`]) are
//! deterministic whenever the simulation driving them is.

pub mod chrome;
pub mod histogram;
pub mod registry;
pub mod series;
pub mod span;
pub mod stall;
pub mod stream;

pub use chrome::ChromeTrace;
pub use histogram::Histogram;
pub use registry::{CounterId, GaugeId, HistogramId, Registry};
pub use series::{SeriesId, TimeSeries};
pub use span::{SpanEvent, SpanId, SpanProfiler};
pub use stall::{NetCause, StallGrid, CAUSE_NAMES, NET_CAUSES, NET_CAUSE_NAMES, STALL_CLASSES};
pub use stream::StreamWriter;
