//! Versioned binary snapshot codec and content-addressed checkpoint cache.
//!
//! The simulator is bit-deterministic (pinned in `tests/determinism.rs`),
//! which makes snapshot/fork and result caching *provably sound*: a run
//! restored from a snapshot taken at cycle `t` produces exactly the bytes
//! a straight-through run would have produced from cycle `t` on. This
//! crate supplies the plumbing:
//!
//! * [`Enc`]/[`Dec`] — a little-endian, length-prefixed binary
//!   encoder/decoder pair with no external dependencies, mirroring the
//!   hand-rolled JSON discipline of `equinox-config`.
//! * [`Snap`] — the round-trip trait (`snap` writes, `restore` reads).
//!   Implemented here for primitives and std containers; stateful
//!   simulator components implement it (or inherent equivalents) in
//!   their owning crates.
//! * [`write_snapshot`]/[`read_snapshot`] — a versioned container:
//!   magic `EQSN`, a format version, and a section table of
//!   `(tag, offset, len)` entries, so readers can locate sections
//!   without parsing the whole payload and fail *structurally* (never
//!   panic) on corrupt, truncated, or future-versioned input.
//! * [`fnv1a`] — the 64-bit FNV-1a hash used to content-address cache
//!   entries by canonical spec bytes.
//! * [`CheckpointCache`] — a directory of content-addressed blobs
//!   (warm checkpoints, finished artifacts) with atomic writes.

use std::collections::VecDeque;
use std::fmt;
use std::path::{Path, PathBuf};

/// Magic bytes opening every snapshot container.
pub const MAGIC: [u8; 4] = *b"EQSN";
/// Container format version written by this crate.
pub const VERSION: u16 = 1;

/// Structured decode/restore failure. Restoring from bytes never
/// panics: every malformed input maps to one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The container does not start with [`MAGIC`].
    BadMagic,
    /// The container was written by a newer (or unknown) format version.
    UnsupportedVersion(u16),
    /// The input ended before a declared length was satisfied.
    Truncated,
    /// A section or value decoded cleanly but left unread bytes behind.
    TrailingBytes,
    /// A value decoded but violates an invariant of the receiving
    /// component (wrong shape for the current config, bad enum tag…).
    BadValue(&'static str),
    /// A section tag required by the reader is absent from the table.
    MissingSection(u32),
    /// Filesystem failure while loading/storing a cached blob.
    Io(String),
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::BadMagic => write!(f, "snapshot magic mismatch (not an EQSN blob)"),
            SnapError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {VERSION})")
            }
            SnapError::Truncated => write!(f, "snapshot truncated"),
            SnapError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
            SnapError::BadValue(what) => write!(f, "snapshot value invalid: {what}"),
            SnapError::MissingSection(tag) => {
                write!(f, "snapshot section {tag:#010x} missing")
            }
            SnapError::Io(e) => write!(f, "snapshot io: {e}"),
        }
    }
}

impl std::error::Error for SnapError {}

/// Binary encoder: an append-only little-endian byte buffer.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Fresh empty encoder.
    pub fn new() -> Self {
        Enc::default()
    }

    /// Consumes the encoder, returning the bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` travels as `u64` so snapshots are word-size independent.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Floats travel as raw bit patterns: restore is bit-exact, NaNs
    /// and signed zeros included.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Binary decoder over a byte slice; every read is bounds-checked and
/// returns [`SnapError::Truncated`] instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub fn usize(&mut self) -> Result<usize, SnapError> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| SnapError::BadValue("usize overflow"))
    }

    pub fn f64(&mut self) -> Result<f64, SnapError> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::BadValue("bool tag")),
        }
    }

    /// Length-prefixed raw bytes. The length is validated against the
    /// remaining input *before* any slicing, so a corrupt huge length
    /// fails cleanly instead of attempting a giant allocation.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let n = self.usize()?;
        if self.remaining() < n {
            return Err(SnapError::Truncated);
        }
        self.take(n)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, SnapError> {
        let b = self.bytes()?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapError::BadValue("utf-8 string"))
    }

    /// Asserts the input is fully consumed.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes)
        }
    }
}

/// Round-trip serialization: `restore(snap(x)) == x` bit-for-bit.
pub trait Snap: Sized {
    /// Appends this value's encoding to `e`.
    fn snap(&self, e: &mut Enc);
    /// Reads one value back; structured error on malformed input.
    fn restore(d: &mut Dec) -> Result<Self, SnapError>;
}

macro_rules! snap_prim {
    ($t:ty, $put:ident, $get:ident) => {
        impl Snap for $t {
            fn snap(&self, e: &mut Enc) {
                e.$put(*self);
            }
            fn restore(d: &mut Dec) -> Result<Self, SnapError> {
                d.$get()
            }
        }
    };
}

snap_prim!(u8, put_u8, u8);
snap_prim!(u16, put_u16, u16);
snap_prim!(u32, put_u32, u32);
snap_prim!(u64, put_u64, u64);
snap_prim!(usize, put_usize, usize);
snap_prim!(f64, put_f64, f64);
snap_prim!(bool, put_bool, bool);

impl Snap for String {
    fn snap(&self, e: &mut Enc) {
        e.put_str(self);
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        d.str()
    }
}

impl<T: Snap> Snap for Vec<T> {
    fn snap(&self, e: &mut Enc) {
        e.put_usize(self.len());
        for v in self {
            v.snap(e);
        }
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        let n = d.usize()?;
        // Cap the pre-allocation by what the input could possibly hold
        // (1 byte/element minimum) so corrupt lengths can't OOM.
        let mut out = Vec::with_capacity(n.min(d.remaining()));
        for _ in 0..n {
            out.push(T::restore(d)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for VecDeque<T> {
    fn snap(&self, e: &mut Enc) {
        e.put_usize(self.len());
        for v in self {
            v.snap(e);
        }
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        let n = d.usize()?;
        let mut out = VecDeque::with_capacity(n.min(d.remaining()));
        for _ in 0..n {
            out.push_back(T::restore(d)?);
        }
        Ok(out)
    }
}

impl<T: Snap> Snap for Option<T> {
    fn snap(&self, e: &mut Enc) {
        match self {
            None => e.put_u8(0),
            Some(v) => {
                e.put_u8(1);
                v.snap(e);
            }
        }
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        match d.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::restore(d)?)),
            _ => Err(SnapError::BadValue("option tag")),
        }
    }
}

impl<A: Snap, B: Snap> Snap for (A, B) {
    fn snap(&self, e: &mut Enc) {
        self.0.snap(e);
        self.1.snap(e);
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        Ok((A::restore(d)?, B::restore(d)?))
    }
}

impl<A: Snap, B: Snap, C: Snap> Snap for (A, B, C) {
    fn snap(&self, e: &mut Enc) {
        self.0.snap(e);
        self.1.snap(e);
        self.2.snap(e);
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        Ok((A::restore(d)?, B::restore(d)?, C::restore(d)?))
    }
}

impl<T: Snap, const N: usize> Snap for [T; N] {
    fn snap(&self, e: &mut Enc) {
        for v in self {
            v.snap(e);
        }
    }
    fn restore(d: &mut Dec) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::restore(d)?);
        }
        out.try_into()
            .map_err(|_| SnapError::BadValue("array length"))
    }
}

/// Assembles a versioned container from `(tag, payload)` sections.
///
/// Layout (all little-endian):
///
/// ```text
/// magic "EQSN" | version u16 | n_sections u32
/// n × (tag u32 | offset u64 | len u64)      -- section table
/// section payloads, concatenated
/// ```
///
/// Offsets are relative to the start of the payload region (the byte
/// right after the table), so the header can be parsed independently.
pub fn write_snapshot(sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let mut e = Enc::new();
    e.buf.extend_from_slice(&MAGIC);
    e.put_u16(VERSION);
    e.put_u32(sections.len() as u32);
    let mut off = 0u64;
    for (tag, payload) in sections {
        e.put_u32(*tag);
        e.put_u64(off);
        e.put_u64(payload.len() as u64);
        off += payload.len() as u64;
    }
    for (_, payload) in sections {
        e.buf.extend_from_slice(payload);
    }
    e.into_bytes()
}

/// Parses a container written by [`write_snapshot`], returning its
/// sections as `(tag, payload)` slices in table order.
///
/// # Errors
///
/// [`SnapError::BadMagic`] / [`SnapError::UnsupportedVersion`] on a
/// foreign or future blob, [`SnapError::Truncated`] when any declared
/// offset/len falls outside the input, [`SnapError::TrailingBytes`]
/// when the payload region is longer than the table accounts for.
pub fn read_snapshot(buf: &[u8]) -> Result<Vec<(u32, &[u8])>, SnapError> {
    let mut d = Dec::new(buf);
    let magic = d.take(4)?;
    if magic != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = d.u16()?;
    if version != VERSION {
        return Err(SnapError::UnsupportedVersion(version));
    }
    let n = d.u32()? as usize;
    if n > d.remaining() / 20 {
        // Each table entry is 20 bytes; a larger count cannot fit.
        return Err(SnapError::Truncated);
    }
    let mut table = Vec::with_capacity(n);
    for _ in 0..n {
        let tag = d.u32()?;
        let off = d.u64()?;
        let len = d.u64()?;
        table.push((tag, off, len));
    }
    let payload = &buf[buf.len() - d.remaining()..];
    let mut out = Vec::with_capacity(n);
    let mut expect_end = 0u64;
    for (tag, off, len) in table {
        let end = off.checked_add(len).ok_or(SnapError::Truncated)?;
        if end > payload.len() as u64 {
            return Err(SnapError::Truncated);
        }
        out.push((tag, &payload[off as usize..end as usize]));
        expect_end = expect_end.max(end);
    }
    if expect_end != payload.len() as u64 {
        return Err(SnapError::TrailingBytes);
    }
    Ok(out)
}

/// Finds a required section by tag in a [`read_snapshot`] result.
pub fn section<'a>(sections: &[(u32, &'a [u8])], tag: u32) -> Result<&'a [u8], SnapError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, s)| *s)
        .ok_or(SnapError::MissingSection(tag))
}

/// 64-bit FNV-1a over `bytes` — the content-address hash for cache
/// keys. Stable, dependency-free, and adequate for cache addressing
/// (collisions only cost a wrong cache hit *within one user's own
/// checkpoint dir*, and keys include full canonical spec text).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A directory of content-addressed blobs: warm checkpoints and
/// finished artifacts, keyed by the [`fnv1a`] hash of their canonical
/// spec bytes.
#[derive(Debug, Clone)]
pub struct CheckpointCache {
    dir: PathBuf,
}

impl CheckpointCache {
    /// Cache rooted at `dir` (created on first store).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointCache { dir: dir.into() }
    }

    /// The cache root.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the blob for (`kind`, `key`): `<dir>/<kind>_<key:016x>`.
    pub fn path(&self, kind: &str, key: u64) -> PathBuf {
        self.dir.join(format!("{kind}_{key:016x}"))
    }

    /// Loads a blob if present; `Ok(None)` on a miss.
    pub fn load(&self, kind: &str, key: u64) -> Result<Option<Vec<u8>>, SnapError> {
        let p = self.path(kind, key);
        match std::fs::read(&p) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SnapError::Io(format!("{}: {e}", p.display()))),
        }
    }

    /// Stores a blob atomically (temp file + rename), creating the
    /// cache dir on demand. Concurrent writers racing on the same key
    /// both write identical bytes (content-addressed), so either rename
    /// winning is fine.
    pub fn store(&self, kind: &str, key: u64, bytes: &[u8]) -> Result<(), SnapError> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| SnapError::Io(format!("{}: {e}", self.dir.display())))?;
        let fin = self.path(kind, key);
        let tmp = self.dir.join(format!(
            ".tmp_{kind}_{key:016x}_{}",
            std::process::id()
        ));
        std::fs::write(&tmp, bytes).map_err(|e| SnapError::Io(format!("{}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, &fin).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            SnapError::Io(format!("{}: {e}", fin.display()))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = Enc::new();
        0xabu8.snap(&mut e);
        0x1234u16.snap(&mut e);
        0xdead_beefu32.snap(&mut e);
        0x0123_4567_89ab_cdefu64.snap(&mut e);
        42usize.snap(&mut e);
        (-0.0f64).snap(&mut e);
        f64::NAN.snap(&mut e);
        true.snap(&mut e);
        "héllo".to_string().snap(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(u8::restore(&mut d).unwrap(), 0xab);
        assert_eq!(u16::restore(&mut d).unwrap(), 0x1234);
        assert_eq!(u32::restore(&mut d).unwrap(), 0xdead_beef);
        assert_eq!(u64::restore(&mut d).unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(usize::restore(&mut d).unwrap(), 42);
        assert_eq!(f64::restore(&mut d).unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(f64::restore(&mut d).unwrap().is_nan());
        assert!(bool::restore(&mut d).unwrap());
        assert_eq!(String::restore(&mut d).unwrap(), "héllo");
        d.finish().unwrap();
    }

    #[test]
    fn containers_round_trip() {
        let mut e = Enc::new();
        vec![1u64, 2, 3].snap(&mut e);
        VecDeque::from([(&4u32, &5u64)].map(|(a, b)| (*a, *b))).snap(&mut e);
        Some(7u8).snap(&mut e);
        Option::<u8>::None.snap(&mut e);
        [9u64, 10, 11, 12].snap(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(Vec::<u64>::restore(&mut d).unwrap(), vec![1, 2, 3]);
        assert_eq!(
            VecDeque::<(u32, u64)>::restore(&mut d).unwrap(),
            VecDeque::from([(4u32, 5u64)])
        );
        assert_eq!(Option::<u8>::restore(&mut d).unwrap(), Some(7));
        assert_eq!(Option::<u8>::restore(&mut d).unwrap(), None);
        assert_eq!(<[u64; 4]>::restore(&mut d).unwrap(), [9, 10, 11, 12]);
        d.finish().unwrap();
    }

    #[test]
    fn truncated_reads_fail_structurally() {
        let mut e = Enc::new();
        vec![1u64, 2, 3].snap(&mut e);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Dec::new(&bytes[..cut]);
            let r = Vec::<u64>::restore(&mut d);
            assert_eq!(r.unwrap_err(), SnapError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut e = Enc::new();
        7u64.snap(&mut e);
        e.put_u8(0);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        u64::restore(&mut d).unwrap();
        assert_eq!(d.finish().unwrap_err(), SnapError::TrailingBytes);
    }

    #[test]
    fn bad_tags_are_bad_values() {
        let mut d = Dec::new(&[2]);
        assert_eq!(bool::restore(&mut d).unwrap_err(), SnapError::BadValue("bool tag"));
        let mut d = Dec::new(&[9]);
        assert_eq!(
            Option::<u8>::restore(&mut d).unwrap_err(),
            SnapError::BadValue("option tag")
        );
    }

    #[test]
    fn container_round_trips_sections() {
        let blob = write_snapshot(&[(1, vec![0xaa, 0xbb]), (2, vec![]), (7, vec![0xcc])]);
        let sections = read_snapshot(&blob).unwrap();
        assert_eq!(sections.len(), 3);
        assert_eq!(section(&sections, 1).unwrap(), &[0xaa, 0xbb]);
        assert_eq!(section(&sections, 2).unwrap(), &[] as &[u8]);
        assert_eq!(section(&sections, 7).unwrap(), &[0xcc]);
        assert_eq!(section(&sections, 9).unwrap_err(), SnapError::MissingSection(9));
    }

    #[test]
    fn container_rejects_bad_magic() {
        let mut blob = write_snapshot(&[(1, vec![1, 2, 3])]);
        blob[0] = b'X';
        assert_eq!(read_snapshot(&blob).unwrap_err(), SnapError::BadMagic);
    }

    #[test]
    fn container_rejects_future_version() {
        let mut blob = write_snapshot(&[(1, vec![1, 2, 3])]);
        blob[4] = 0xff; // version LE low byte
        assert_eq!(
            read_snapshot(&blob).unwrap_err(),
            SnapError::UnsupportedVersion(0x00ff)
        );
    }

    #[test]
    fn container_rejects_truncation_at_every_cut() {
        let blob = write_snapshot(&[(1, vec![1, 2, 3]), (2, vec![4])]);
        for cut in 0..blob.len() {
            let r = read_snapshot(&blob[..cut]);
            assert!(r.is_err(), "cut at {cut} must fail, got {r:?}");
            assert!(
                matches!(r, Err(SnapError::Truncated) | Err(SnapError::BadMagic)
                    | Err(SnapError::UnsupportedVersion(_)) | Err(SnapError::TrailingBytes)),
                "cut at {cut}: structured error expected"
            );
        }
    }

    #[test]
    fn container_rejects_trailing_garbage() {
        let mut blob = write_snapshot(&[(1, vec![1, 2, 3])]);
        blob.push(0x55);
        assert_eq!(read_snapshot(&blob).unwrap_err(), SnapError::TrailingBytes);
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn cache_store_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("eqsnap_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CheckpointCache::new(&dir);
        assert_eq!(cache.load("warm", 0x1234).unwrap(), None);
        cache.store("warm", 0x1234, b"payload").unwrap();
        assert_eq!(cache.load("warm", 0x1234).unwrap().as_deref(), Some(&b"payload"[..]));
        // Different kind, same key: distinct blob.
        assert_eq!(cache.load("artifact", 0x1234).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
