//! Analytic-model validation: open-loop saturation throughputs of the
//! injection structures match what the architecture predicts. These are
//! the numbers from which every full-system result follows, so they are
//! pinned here as a regression fence.

use equinox_suite::core::loadlat::{load_latency_curve, load_latency_curve_cfg, ReplySide};
use equinox_suite::core::EquiNoxDesign;
use equinox_suite::placement::Placement;

#[test]
fn baseline_reply_injection_saturates_at_one_flit_per_cb_cycle() {
    // 8 CBs x 1 local injector x 1 flit/cycle = 8 flits/cycle ceiling;
    // VC ping-ponging sustains most of it.
    let p = Placement::diamond(8, 8, 8);
    let pts = load_latency_curve(&p, &ReplySide::Local, &[1.0], 6_000, 3);
    let thr = pts[0].throughput;
    assert!(
        thr > 6.5 && thr <= 8.2,
        "baseline saturation {thr} flits/cycle outside [6.5, 8.2]"
    );
}

#[test]
fn equinox_at_least_doubles_reply_injection_bandwidth() {
    let design = EquiNoxDesign::search_k(8, 8, 800, 7, 2);
    let base = load_latency_curve(&design.placement, &ReplySide::Local, &[1.0], 6_000, 3);
    let eq = load_latency_curve(
        &design.placement,
        &ReplySide::Equinox(design.clone()),
        &[1.0],
        6_000,
        3,
    );
    let ratio = eq[0].throughput / base[0].throughput;
    assert!(
        ratio > 2.0,
        "EquiNox multiplies injection bandwidth by {ratio:.2} (expected > 2x)"
    );
}

#[test]
fn audited_load_point_matches_unaudited_point() {
    // The drivers pass auditing down by value from the resolved spec
    // (`--audit`). The audited curve must be bit-identical — the audit
    // sweeps are read-only — and violation-free (the default config
    // panics on the first one). Gating off must be bit-identical too.
    let p = Placement::diamond(8, 8, 8);
    let plain = load_latency_curve(&p, &ReplySide::Local, &[0.3], 2_000, 5);
    let audited = load_latency_curve_cfg(
        &p,
        &ReplySide::Local,
        &[0.3],
        2_000,
        5,
        Some(equinox_suite::noc::AuditConfig::default()),
        true,
    );
    let ungated = load_latency_curve_cfg(&p, &ReplySide::Local, &[0.3], 2_000, 5, None, false);
    assert_eq!(plain, audited, "auditor must not perturb the measurement");
    assert_eq!(plain, ungated, "activity gating must be bit-identical");
}

#[test]
fn below_saturation_both_accept_the_offered_load() {
    let design = EquiNoxDesign::search_k(8, 8, 400, 7, 1);
    for side in [ReplySide::Local, ReplySide::Equinox(design.clone())] {
        let pts = load_latency_curve(&design.placement, &side, &[0.1], 6_000, 3);
        // 0.1 pkts/CB/cycle x 8 CBs x 5 flits = 4 flits/cycle offered.
        let thr = pts[0].throughput;
        assert!(
            (thr - 4.0).abs() < 0.5,
            "accepted {thr} flits/cycle vs 4.0 offered"
        );
        assert!(pts[0].latency < 40.0, "uncongested latency {}", pts[0].latency);
    }
}
