//! Activity-gated stepping must be a pure optimization: skipping idle
//! routers, idle links and quiescent machine cycles may change how much
//! work the simulator does, never what it computes. These tests pin
//! bit-identity between gated (the default) and exhaustive
//! (`--no-activity-gate`) runs — metrics, per-network event counters,
//! and, when the invariant auditor is on, its sweep schedule — across
//! the paper's schemes, single- and separate-network topologies, and
//! both subnet clock ratios (CMesh at 1:1, DA2Mesh at 2.5:1).
//!
//! The gate is set explicitly on every config (never via the
//! `EQUINOX_NO_ACTIVITY_GATE` environment variable): the env var is
//! process-global and tests in this binary run concurrently.

use equinox_suite::core::{RunMetrics, SchemeKind, System, SystemConfig};
use equinox_suite::noc::stats::NetStats;
use equinox_suite::noc::AuditConfig;
use equinox_suite::traffic::{profile::benchmark, Workload};

/// Everything a run observably produces: its metrics, each network's
/// full event-counter block, and each network's audit sweep count.
struct Observed {
    metrics: RunMetrics,
    net_stats: Vec<NetStats>,
    audit_sweeps: Vec<u64>,
    findings: usize,
}

fn run_observed(
    scheme: SchemeKind,
    bench: &str,
    rate: f64,
    seed: u64,
    gate: bool,
    audit: Option<AuditConfig>,
) -> Observed {
    let workload = Workload::new(benchmark(bench).unwrap(), rate, seed);
    let mut cfg = SystemConfig::new(scheme, 8, workload);
    cfg.max_cycles = 60_000;
    cfg.activity_gate = gate;
    cfg.audit = audit;
    let mut sys = System::build(cfg);
    let metrics = sys.run();
    Observed {
        metrics,
        net_stats: sys.networks().iter().map(|n| n.stats().clone()).collect(),
        audit_sweeps: sys.networks().iter().map(|n| n.audit_sweeps()).collect(),
        findings: sys.audit_findings().len(),
    }
}

/// Bit-exact comparison of two runs (`RunMetrics` holds floats, so
/// compare bit patterns rather than deriving `PartialEq`).
fn assert_observed_identical(a: &Observed, b: &Observed, what: &str) {
    assert_eq!(a.metrics.cycles, b.metrics.cycles, "{what}: cycles diverged");
    assert_eq!(
        a.metrics.completed, b.metrics.completed,
        "{what}: completion diverged"
    );
    assert_eq!(
        a.metrics.ipc.to_bits(),
        b.metrics.ipc.to_bits(),
        "{what}: IPC diverged"
    );
    assert_eq!(
        a.metrics.exec_ns.to_bits(),
        b.metrics.exec_ns.to_bits(),
        "{what}: exec time diverged"
    );
    assert_eq!(
        a.metrics.edp.to_bits(),
        b.metrics.edp.to_bits(),
        "{what}: EDP diverged"
    );
    assert_eq!(
        a.metrics.dynamic_j.to_bits(),
        b.metrics.dynamic_j.to_bits(),
        "{what}: dynamic energy diverged"
    );
    assert_eq!(
        a.metrics.latency.total_ns().to_bits(),
        b.metrics.latency.total_ns().to_bits(),
        "{what}: latency diverged"
    );
    assert_eq!(
        a.net_stats, b.net_stats,
        "{what}: per-network event counters diverged"
    );
    assert_eq!(
        a.audit_sweeps, b.audit_sweeps,
        "{what}: audit sweep schedules diverged"
    );
    assert_eq!(a.findings, b.findings, "{what}: audit findings diverged");
}

/// Gated and exhaustive runs are bit-identical for every scheme shape:
/// a single shared network, separate request/reply networks, the
/// multi-port router, the EquiNox injection routers, and the DA2Mesh
/// subnet running at 2.5 core cycles per network cycle.
#[test]
fn gated_run_is_bit_identical_to_exhaustive_run() {
    for scheme in [
        SchemeKind::SingleBase,
        SchemeKind::SeparateBase,
        SchemeKind::MultiPort,
        SchemeKind::EquiNox,
        SchemeKind::Da2Mesh,
    ] {
        let gated = run_observed(scheme, "hotspot", 0.08, 17, true, None);
        let full = run_observed(scheme, "hotspot", 0.08, 17, false, None);
        assert_observed_identical(&gated, &full, scheme.name());
        assert!(
            gated.metrics.cycles > 0,
            "{}: run must simulate something",
            scheme.name()
        );
    }
}

/// Under memory-heavy low-compute traffic the machine spends long
/// stretches fully quiescent (every PE blocked on MSHRs while DRAM
/// timing runs down) — the fast-forward path fires constantly, and the
/// results must still match the exhaustive run exactly.
#[test]
fn quiescence_fast_forward_is_bit_identical() {
    for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
        let gated = run_observed(scheme, "bfs", 0.4, 23, true, None);
        let full = run_observed(scheme, "bfs", 0.4, 23, false, None);
        assert_observed_identical(&gated, &full, scheme.name());
    }
}

/// With the auditor on, gating must not move, merge or drop a single
/// audit evaluation: every per-network sweep and every system-level
/// check lands on the same cycle with the same observations, so the
/// sweep counts and findings match the exhaustive audited run — and the
/// metrics still match the unaudited ones.
#[test]
fn audited_gated_run_matches_audited_exhaustive_run() {
    for scheme in [SchemeKind::SeparateBase, SchemeKind::EquiNox] {
        let audit = || Some(AuditConfig::default());
        let gated = run_observed(scheme, "hotspot", 0.08, 11, true, audit());
        let full = run_observed(scheme, "hotspot", 0.08, 11, false, audit());
        assert_observed_identical(&gated, &full, scheme.name());
        assert!(
            gated.audit_sweeps.iter().all(|&s| s > 0),
            "{}: audit sweeps must actually run",
            scheme.name()
        );
        let unaudited = run_observed(scheme, "hotspot", 0.08, 11, true, None);
        assert_eq!(
            gated.metrics.cycles, unaudited.metrics.cycles,
            "{}: auditing perturbed a gated run",
            scheme.name()
        );
    }
}

/// Strict auditing (a sweep every cycle, a tight watchdog) caps every
/// idle skip at zero or one network step — the degenerate boundary case
/// for the skip math. It must degrade to exhaustive-equivalent
/// behavior, not to a missed or doubled check.
#[test]
fn strict_audit_caps_every_skip_and_stays_identical() {
    let gated = run_observed(
        SchemeKind::EquiNox,
        "bfs",
        0.2,
        31,
        true,
        Some(AuditConfig::strict()),
    );
    let full = run_observed(
        SchemeKind::EquiNox,
        "bfs",
        0.2,
        31,
        false,
        Some(AuditConfig::strict()),
    );
    assert_observed_identical(&gated, &full, "EquiNox/strict");
}
