//! Reproducibility: every layer of the stack is deterministic in its
//! seed, so published numbers can be regenerated bit-for-bit.

use equinox_suite::core::{EquiNoxDesign, SchemeKind, System, SystemConfig};
use equinox_suite::traffic::{profile::benchmark, Workload};

fn run(seed: u64) -> (u64, f64) {
    let workload = Workload::new(benchmark("hotspot").unwrap(), 0.08, seed);
    let cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, workload);
    let m = System::build(cfg).run();
    (m.cycles, m.energy_j())
}

#[test]
fn same_seed_same_run() {
    let a = run(11);
    let b = run(11);
    assert_eq!(a.0, b.0, "cycle counts must match exactly");
    assert_eq!(a.1, b.1, "energy must match exactly");
}

#[test]
fn different_seeds_differ() {
    let a = run(11);
    let b = run(12);
    assert_ne!(a.0, b.0, "different traffic must change the run");
}

#[test]
fn design_search_is_deterministic() {
    let a = EquiNoxDesign::search_k(8, 8, 300, 5, 1);
    let b = EquiNoxDesign::search_k(8, 8, 300, 5, 1);
    assert_eq!(a, b);
}

#[test]
fn equinox_run_with_fixed_design_is_deterministic() {
    let design = EquiNoxDesign::search_k(8, 8, 200, 5, 1);
    let go = || {
        let workload = Workload::new(benchmark("bfs").unwrap(), 0.08, 3);
        let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
        cfg.design = Some(design.clone());
        System::build(cfg).run()
    };
    let a = go();
    let b = go();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.latency.total_ns(), b.latency.total_ns());
}
