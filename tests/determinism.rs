//! Reproducibility: every layer of the stack is deterministic in its
//! seed, so published numbers can be regenerated bit-for-bit — and,
//! since PR 1 fans experiments out on the `equinox-exec` worker pool,
//! also independent of the worker count. Intra-run parallelism
//! (`--sim-threads`, the per-subnet `StepTeam` fan-out inside one
//! `System::step`) extends the same contract: full artifacts, obs/v1
//! blocks and golden flit traces must be byte-identical for any lane
//! count.
//!
//! The sim-thread count is always set **by value** on the spec/config
//! (never via the `EQUINOX_SIM_THREADS` environment variable): env
//! vars are process-global and tests in this binary run concurrently.

use equinox_suite::bench::run_matrix;
use equinox_suite::core::loadlat::{load_latency_curve, ReplySide};
use equinox_suite::core::{EquiNoxDesign, RunMetrics, SchemeKind, System, SystemConfig};
use equinox_suite::exec::set_threads;
use equinox_suite::placement::Placement;
use equinox_suite::traffic::{profile::benchmark, Workload};

fn run(seed: u64) -> (u64, f64) {
    let workload = Workload::new(benchmark("hotspot").unwrap(), 0.08, seed);
    let cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, workload);
    let m = System::build(cfg).run();
    (m.cycles, m.energy_j())
}

#[test]
fn same_seed_same_run() {
    let a = run(11);
    let b = run(11);
    assert_eq!(a.0, b.0, "cycle counts must match exactly");
    assert_eq!(a.1, b.1, "energy must match exactly");
}

#[test]
fn different_seeds_differ() {
    let a = run(11);
    let b = run(12);
    assert_ne!(a.0, b.0, "different traffic must change the run");
}

#[test]
fn design_search_is_deterministic() {
    let a = EquiNoxDesign::search_k(8, 8, 300, 5, 1);
    let b = EquiNoxDesign::search_k(8, 8, 300, 5, 1);
    assert_eq!(a, b);
}

#[test]
fn equinox_run_with_fixed_design_is_deterministic() {
    let design = EquiNoxDesign::search_k(8, 8, 200, 5, 1);
    let go = || {
        let workload = Workload::new(benchmark("bfs").unwrap(), 0.08, 3);
        let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
        cfg.design = Some(design.clone());
        System::build(cfg).run()
    };
    let a = go();
    let b = go();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.latency.total_ns(), b.latency.total_ns());
}

/// Every observable of a run, bit-exact (`RunMetrics` holds floats, so
/// compare their bit patterns rather than deriving `PartialEq`).
fn assert_metrics_identical(a: &RunMetrics, b: &RunMetrics) {
    assert_eq!(a.cycles, b.cycles, "cycle counts diverged");
    assert_eq!(a.ipc.to_bits(), b.ipc.to_bits(), "IPC diverged");
    assert_eq!(a.exec_ns.to_bits(), b.exec_ns.to_bits(), "exec time diverged");
    assert_eq!(a.edp.to_bits(), b.edp.to_bits(), "EDP diverged");
    assert_eq!(
        a.latency.total_ns().to_bits(),
        b.latency.total_ns().to_bits(),
        "latency diverged"
    );
}

// Note on `set_threads`: the worker count is a process-global, and tests
// in this binary run concurrently. That is safe here precisely because
// worker-count independence is the contract under test — any
// interleaving of these flips must still produce identical results, or
// the assertions below fail.

#[test]
fn audited_run_is_bit_identical_to_unaudited_run() {
    // The auditor's sweeps are read-only: enabling it must not perturb a
    // single metric, or `--audit` validation runs would not vouch for the
    // published (unaudited) numbers.
    let go = |audit: bool| {
        let workload = Workload::new(benchmark("hotspot").unwrap(), 0.08, 11);
        let mut cfg = SystemConfig::new(SchemeKind::SeparateBase, 8, workload);
        cfg.audit = audit.then(equinox_suite::noc::AuditConfig::default);
        System::build(cfg).run()
    };
    let plain = go(false);
    let audited = go(true);
    assert_metrics_identical(&plain, &audited);
}

#[test]
fn sweep_matrix_is_worker_count_independent() {
    let schemes = &SchemeKind::ALL[..2];
    let benches = ["gaussian", "bfs"];
    set_threads(1);
    let seq = run_matrix(schemes, 8, &benches, 0.05, &[1, 2]);
    set_threads(4);
    let par = run_matrix(schemes, 8, &benches, 0.05, &[1, 2]);
    set_threads(0);
    assert_eq!(seq.len(), par.len());
    for (row_s, row_p) in seq.iter().zip(&par) {
        assert_eq!(row_s.len(), row_p.len());
        for (a, b) in row_s.iter().zip(row_p) {
            assert_metrics_identical(a, b);
        }
    }
}

#[test]
fn load_latency_curve_is_worker_count_independent() {
    let p = Placement::diamond(8, 8, 8);
    let rates = [0.05, 0.2, 0.4];
    set_threads(1);
    let seq = load_latency_curve(&p, &ReplySide::Local, &rates, 2_000, 1);
    set_threads(3);
    let par = load_latency_curve(&p, &ReplySide::Local, &rates, 2_000, 1);
    set_threads(0);
    assert_eq!(seq, par, "curve must not depend on worker count");
}

#[test]
fn design_search_is_worker_count_independent() {
    set_threads(1);
    let a = EquiNoxDesign::search_k(8, 8, 150, 5, 2);
    set_threads(4);
    let b = EquiNoxDesign::search_k(8, 8, 150, 5, 2);
    set_threads(0);
    assert_eq!(a, b, "top-k placement fan-out must not depend on worker count");
}

/// One obs-armed EquiNox run's `equinox.obs/v1` block, pretty-printed.
fn obs_snapshot() -> String {
    let workload = Workload::new(benchmark("bfs").unwrap(), 0.05, 7);
    let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
    cfg.obs = Some(equinox_suite::core::ObsConfig {
        interval: 500,
        ..Default::default()
    });
    let mut sys = System::build(cfg);
    let m = sys.run();
    assert!(m.completed);
    sys.obs_json().expect("obs armed").pretty()
}

/// One full `equinox.artifact/v1` envelope (metrics + per-network
/// counters + the obs/v1 block) for a run at the given sim-thread
/// count, pretty-printed.
///
/// One canonical spec is embedded in every envelope: the spec block
/// records the `sim_threads` knob itself, which legitimately differs
/// between the runs under comparison, so the lane count is applied at
/// the config level and everything *observable* — metrics, NetStats,
/// obs/v1 — must be byte-identical.
fn artifact_snapshot(scheme: SchemeKind, sim_threads: usize) -> String {
    use equinox_suite::bench::artifact::{artifact, net_stats_json, run_metrics_json};
    use equinox_suite::config::{ExperimentSpec, Json};
    let spec = ExperimentSpec::default();
    let workload = Workload::new(benchmark("bfs").unwrap(), 0.05, 7);
    let mut cfg = SystemConfig::from_spec(scheme, 8, workload, &spec);
    cfg.obs = Some(equinox_suite::core::ObsConfig {
        interval: 500,
        ..Default::default()
    });
    cfg.sim_threads = sim_threads;
    let mut sys = System::build(cfg);
    let m = sys.run();
    assert!(m.completed);
    let nets: Vec<Json> = sys.networks().iter().map(|n| net_stats_json(n.stats())).collect();
    let results = Json::obj()
        .with("metrics", run_metrics_json(&m))
        .with("net_stats", nets)
        .with("obs", sys.obs_json().expect("obs armed"));
    artifact("determinism", &spec, results).pretty()
}

#[test]
fn artifact_is_sim_thread_count_independent() {
    // DA2Mesh exercises the real fan-out (nine subnets, 2.5:1 subnet
    // clocks); SingleBase pins the degenerate single-net path, which
    // must resolve to serial stepping and the same bytes.
    for scheme in [SchemeKind::Da2Mesh, SchemeKind::SingleBase] {
        let serial = artifact_snapshot(scheme, 1);
        for k in [2usize, 8] {
            let par = artifact_snapshot(scheme, k);
            assert_eq!(
                serial,
                par,
                "{}: artifact diverged at {k} sim-threads",
                scheme.name()
            );
        }
    }
}

#[test]
fn ring_reply_fabric_artifact_is_sim_thread_count_independent() {
    // The sim-thread contract extends to the generalized topologies: a
    // SeparateBase run whose reply subnet is a ring produces the same
    // full artifact (metrics + NetStats + obs/v1) for any lane count.
    use equinox_suite::bench::artifact::{artifact, net_stats_json, run_metrics_json};
    use equinox_suite::config::spec::field_by_flag;
    use equinox_suite::config::{ExperimentSpec, Json, Layer};
    let mut spec = ExperimentSpec::default();
    spec.set_str(field_by_flag("--topology").unwrap(), "ring", Layer::Cli)
        .unwrap();
    let snapshot = |sim_threads: usize| {
        let workload = Workload::new(benchmark("bfs").unwrap(), 0.05, 7);
        let mut cfg = SystemConfig::from_spec(SchemeKind::SeparateBase, 8, workload, &spec);
        assert_eq!(
            cfg.reply_topology,
            equinox_suite::noc::TopologyKind::Ring,
            "apply_spec must thread the topology through"
        );
        cfg.obs = Some(equinox_suite::core::ObsConfig {
            interval: 500,
            ..Default::default()
        });
        cfg.sim_threads = sim_threads;
        let mut sys = System::build(cfg);
        let m = sys.run();
        assert!(m.completed, "ring reply fabric must finish the workload");
        let nets: Vec<Json> = sys.networks().iter().map(|n| net_stats_json(n.stats())).collect();
        let results = Json::obj()
            .with("metrics", run_metrics_json(&m))
            .with("net_stats", nets)
            .with("obs", sys.obs_json().expect("obs armed"));
        artifact("determinism", &spec, results).pretty()
    };
    let serial = snapshot(1);
    for k in [2usize, 8] {
        let par = snapshot(k);
        assert_eq!(serial, par, "ring artifact diverged at {k} sim-threads");
    }
}

#[test]
fn sim_threads_spec_field_reaches_the_system() {
    use equinox_suite::config::spec::field_by_flag;
    use equinox_suite::config::{ExperimentSpec, Layer};
    let mut spec = ExperimentSpec::default();
    spec.set_str(field_by_flag("--sim-threads").unwrap(), "8", Layer::Env)
        .unwrap();
    assert_eq!(spec.sim_threads, 8);
    let workload = Workload::new(benchmark("hotspot").unwrap(), 0.05, 3);
    let cfg = SystemConfig::from_spec(SchemeKind::Da2Mesh, 8, workload, &spec);
    assert_eq!(cfg.sim_threads, 8, "apply_spec must copy the field");
    let sys = System::build(cfg);
    assert_eq!(sys.sim_lanes(), 8, "nine subnets stepped on eight lanes");
}

#[test]
fn parallel_flit_trace_matches_serial_golden() {
    // The flit trace is the finest-grained observable the simulator
    // has: every injection, hop and ejection with its cycle, router,
    // packet and sequence number. Serial and parallel stepping must
    // produce literally the same event streams, per network, in order.
    let go = |sim_threads: usize| {
        let workload = Workload::new(benchmark("hotspot").unwrap(), 0.08, 13);
        let mut cfg = SystemConfig::new(SchemeKind::Da2Mesh, 8, workload);
        cfg.max_cycles = 30_000;
        cfg.trace_capacity = 1 << 16;
        cfg.sim_threads = sim_threads;
        let mut sys = System::build(cfg);
        let m = sys.run();
        (m.cycles, sys.drain_traces())
    };
    let (c1, t1) = go(1);
    let (c4, t4) = go(4);
    assert_eq!(c1, c4, "cycle counts diverged");
    let events: usize = t1.iter().map(|(_, e)| e.len()).sum();
    assert!(events > 0, "trace must capture real flit events");
    assert_eq!(
        t1, t4,
        "golden flit traces diverged between serial and parallel stepping"
    );
}

/// The [`artifact_snapshot`] envelope for a run that is optionally
/// forked: when `fork_cycle` is `Some(c)`, the system is stepped to
/// cycle `c`, snapshotted, restored into a *fresh* identically-
/// configured build, and finished there. Everything observable —
/// metrics, NetStats and the obs/v1 block — comes from whichever system
/// finished the run. Returns the artifact and the run's cycle count (so
/// callers can pick fork points strictly inside the run).
fn forked_artifact_snapshot(scheme: SchemeKind, fork_cycle: Option<u64>) -> (String, u64) {
    use equinox_suite::bench::artifact::{artifact, net_stats_json, run_metrics_json};
    use equinox_suite::config::{ExperimentSpec, Json};
    let spec = ExperimentSpec::default();
    let build = || {
        let workload = Workload::new(benchmark("bfs").unwrap(), 0.05, 7);
        let mut cfg = SystemConfig::from_spec(scheme, 8, workload, &spec);
        cfg.obs = Some(equinox_suite::core::ObsConfig {
            interval: 500,
            ..Default::default()
        });
        System::build(cfg)
    };
    let mut sys = build();
    if let Some(c) = fork_cycle {
        while sys.cycle() < c {
            sys.step();
        }
        let snap = sys.snapshot();
        sys = build();
        sys.restore(&snap).expect("identical build accepts the snapshot");
        assert!(sys.cycle() >= c, "restore resumes at the snapshot cycle");
    }
    let m = sys.run();
    assert!(m.completed);
    let nets: Vec<Json> = sys.networks().iter().map(|n| net_stats_json(n.stats())).collect();
    let results = Json::obj()
        .with("metrics", run_metrics_json(&m))
        .with("net_stats", nets)
        .with("obs", sys.obs_json().expect("obs armed"));
    (artifact("determinism", &spec, results).pretty(), m.cycles)
}

#[test]
fn forked_run_artifact_is_byte_identical_to_straight_through() {
    // The checkpoint/fork contract: snapshotting mid-run and finishing
    // from a restored fresh build must change nothing observable — the
    // full artifact, including the obs/v1 block, is byte-identical to a
    // straight-through run's. Da2Mesh exercises the multi-network shape,
    // EquiNox the EIR injection ports. Fork points are fractions of the
    // measured completion cycle so the snapshot always lands mid-run.
    for scheme in [SchemeKind::EquiNox, SchemeKind::Da2Mesh] {
        let (straight, total) = forked_artifact_snapshot(scheme, None);
        for frac in [4u64, 2] {
            let fork_at = (total / frac).max(1);
            let (forked, _) = forked_artifact_snapshot(scheme, Some(fork_at));
            if straight != forked {
                for (a, b) in straight.lines().zip(forked.lines()) {
                    if a != b {
                        panic!(
                            "{}: artifact diverged when forked at cycle {fork_at}:\n  straight: {a}\n  forked:   {b}",
                            scheme.name()
                        );
                    }
                }
                panic!(
                    "{}: artifact diverged in length when forked at cycle {fork_at}",
                    scheme.name()
                );
            }
        }
    }
}

#[test]
fn result_cache_replays_bit_identical_metrics() {
    // The content-addressed result cache: with `checkpoint_dir` armed,
    // the first call computes and stores each matrix cell, the second
    // replays it from disk — and both are bit-identical to an uncached
    // run of the same spec. The cache dir is per-test and set by value
    // on the spec (never via the environment; tests run concurrently).
    use equinox_suite::bench::run_seeds_spec;
    use equinox_suite::config::ExperimentSpec;
    let dir = std::env::temp_dir().join(format!("eqsn_det_cache_{}", std::process::id()));
    let mut spec = ExperimentSpec::default();
    spec.scale = 0.05;
    let straight = run_seeds_spec(SchemeKind::SeparateBase, 8, "gaussian", &spec);
    spec.checkpoint_dir = dir.to_string_lossy().into_owned();
    let cold = run_seeds_spec(SchemeKind::SeparateBase, 8, "gaussian", &spec);
    let warm = run_seeds_spec(SchemeKind::SeparateBase, 8, "gaussian", &spec);
    assert_metrics_identical(&straight, &cold);
    assert_metrics_identical(&straight, &warm);
    // A corrupted entry is a miss, not bad data: the cell recomputes.
    for entry in std::fs::read_dir(&dir).unwrap() {
        std::fs::write(entry.unwrap().path(), b"junk").unwrap();
    }
    let recovered = run_seeds_spec(SchemeKind::SeparateBase, 8, "gaussian", &spec);
    assert_metrics_identical(&straight, &recovered);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn obs_block_is_worker_count_independent() {
    // The artifact's obs/v1 block holds only cycle-derived data (the
    // wall-clock span profile is exported separately, to the Chrome
    // trace), so its full rendering — counters, latency histograms,
    // time series, heat grids, link counters — must be byte-identical
    // across repeated runs and worker counts.
    set_threads(1);
    let seq = obs_snapshot();
    set_threads(4);
    let par = obs_snapshot();
    set_threads(0);
    assert_eq!(seq, par, "obs block must not depend on worker count");
    let again = obs_snapshot();
    assert_eq!(seq, again, "obs block must be reproducible run-to-run");
}
