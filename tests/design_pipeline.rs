//! Integration tests of the §4 design pipeline across crates:
//! placement → MCTS → physical checks.

use equinox_suite::core::{EquiNoxDesign, SchemeKind, System, SystemConfig};
use equinox_suite::mcts::eval::{evaluate, EvalWeights};
use equinox_suite::mcts::problem::EirProblem;
use equinox_suite::noc::AuditConfig;
use equinox_suite::phys::segment::count_crossings;
use equinox_suite::traffic::{profile::benchmark, Workload};

fn design() -> EquiNoxDesign {
    EquiNoxDesign::search_k(8, 8, 600, 7, 2)
}

#[test]
fn pipeline_produces_a_physically_viable_design() {
    let d = design();
    assert!(d.placement.is_queen_safe(), "CBs must be non-attacking");
    assert!(d.selection.is_exclusive(&d.placement), "EIRs are not shared");
    let segs = d.segments();
    assert!(
        count_crossings(&segs) <= 2,
        "crossings {} (paper reaches 0)",
        count_crossings(&segs)
    );
    assert!(d.rdl_layers() <= 2, "layers {}", d.rdl_layers());
    let problem = EirProblem::new(d.placement.clone());
    assert!(
        problem.wire.all_single_cycle(&segs),
        "every RDL wire must be repeater-free"
    );
}

#[test]
fn every_cb_gets_equivalent_injection_routers() {
    let d = design();
    for (i, g) in d.selection.groups.iter().enumerate() {
        assert!(
            !g.is_empty(),
            "CB {i} has no EIRs — a starved CB paces the whole machine"
        );
        for e in g {
            let hops = d.placement.cbs[i].manhattan(*e);
            assert!((2..=3).contains(&hops), "EIR at {hops} hops");
        }
    }
    assert!(d.num_links() >= 16, "got {} links", d.num_links());
}

#[test]
fn design_improves_the_evaluation_over_no_eirs() {
    let d = design();
    let problem = EirProblem::new(d.placement.clone());
    let w = EvalWeights::default();
    let with = evaluate(&problem, &d.selection, &w);
    let without = evaluate(
        &problem,
        &equinox_suite::mcts::problem::EirSelection {
            groups: vec![Vec::new(); 8],
        },
        &w,
    );
    assert!(with.cost < without.cost);
    assert!(with.avg_hops < without.avg_hops);
    assert!(with.max_load < without.max_load);
}

#[test]
fn ubumps_scale_with_selected_links() {
    let d = design();
    assert_eq!(d.ubump_count(128), d.num_links() * 256);
}

#[test]
fn designed_system_runs_clean_under_audit() {
    // The searched design's EIR ports and interposer links go through the
    // same credit/escape-VC discipline as the mesh proper; an audited
    // run proves the design search never emits a machine that only works
    // by leaking flits.
    let workload = Workload::new(benchmark("bfs").unwrap(), 0.05, 7);
    let mut cfg = SystemConfig::new(SchemeKind::EquiNox, 8, workload);
    cfg.design = Some(design());
    cfg.audit = Some(AuditConfig {
        check_interval: 16,
        ..AuditConfig::default()
    });
    let m = System::build(cfg).run();
    assert!(m.completed, "EquiNox stalled under audit at {}", m.cycles);
}

#[test]
fn designs_exist_for_larger_meshes() {
    // Scalability path (§6.7/§6.8): 12×12 with 8 CBs deletes redundant
    // N-Queen rows.
    let d = EquiNoxDesign::search_k(12, 8, 200, 1, 1);
    assert_eq!(d.placement.cbs.len(), 8);
    assert!(d.placement.is_queen_safe());
    assert!(d.selection.is_exclusive(&d.placement));
    assert!(d.num_links() >= 8);
}
