//! Cross-crate integration tests: every scheme boots, runs a benchmark to
//! completion, and reports coherent metrics.

use equinox_suite::core::{SchemeKind, System, SystemConfig};
use equinox_suite::noc::AuditConfig;
use equinox_suite::traffic::{profile::benchmark, Workload};

fn run(scheme: SchemeKind, bench: &str, scale: f64) -> equinox_suite::core::RunMetrics {
    let profile = benchmark(bench).expect("benchmark in suite");
    let workload = Workload::new(profile, scale, 42);
    let mut cfg = SystemConfig::new(scheme, 8, workload);
    cfg.max_cycles = 400_000;
    System::build(cfg).run()
}

#[test]
fn all_seven_schemes_complete_a_network_bound_benchmark() {
    for scheme in SchemeKind::ALL {
        let m = run(scheme, "kmeans", 0.1);
        assert!(m.completed, "{} stalled at {}", scheme.name(), m.cycles);
        assert!(m.cycles > 100);
        assert!(m.ipc > 0.0);
        assert!(m.energy_j() > 0.0);
        assert!(m.edp > 0.0);
        assert!(m.area_mm2 > 1.0);
    }
}

#[test]
fn all_seven_schemes_complete_a_compute_bound_benchmark() {
    for scheme in SchemeKind::ALL {
        let m = run(scheme, "myocyte", 0.1);
        assert!(m.completed, "{} stalled", scheme.name());
    }
}

#[test]
fn all_seven_schemes_pass_an_audited_smoke_run() {
    // Same machines, with the invariant auditor armed: credit/flit
    // conservation, escape-VC discipline and packet accounting are
    // checked throughout, and any violation panics the test.
    for scheme in SchemeKind::ALL {
        let profile = benchmark("kmeans").expect("benchmark in suite");
        let mut cfg = SystemConfig::new(scheme, 8, Workload::new(profile, 0.05, 42));
        cfg.max_cycles = 400_000;
        cfg.audit = Some(AuditConfig {
            check_interval: 16,
            ..AuditConfig::default()
        });
        let mut sys = System::build(cfg);
        let m = sys.run();
        assert!(m.completed, "{} stalled under audit", scheme.name());
        assert!(sys.audit_findings().is_empty());
        for net in sys.networks() {
            assert!(
                net.audit_sweeps() > 0,
                "{}: auditor never swept a network",
                scheme.name()
            );
        }
    }
}

#[test]
fn reply_bits_dominate_like_the_paper() {
    // §2.2: replies carry ~72.7% of NoC bits.
    let m = run(SchemeKind::SeparateBase, "kmeans", 0.1);
    assert!(
        m.reply_bit_fraction > 0.6 && m.reply_bit_fraction < 0.85,
        "reply bit share {}",
        m.reply_bit_fraction
    );
}

#[test]
fn equinox_beats_separate_base_when_network_bound() {
    let base = run(SchemeKind::SeparateBase, "kmeans", 0.15);
    let eq = run(SchemeKind::EquiNox, "kmeans", 0.15);
    assert!(
        eq.cycles < base.cycles,
        "EquiNox {} !< SeparateBase {}",
        eq.cycles,
        base.cycles
    );
    assert!(eq.edp < base.edp, "EDP must improve too");
}

#[test]
fn single_network_is_the_slowest_family() {
    let single = run(SchemeKind::SingleBase, "kmeans", 0.15);
    let eq = run(SchemeKind::EquiNox, "kmeans", 0.15);
    assert!(
        (eq.cycles as f64) < 0.85 * single.cycles as f64,
        "EquiNox {} should be well under SingleBase {}",
        eq.cycles,
        single.cycles
    );
}

#[test]
fn ubump_accounting_matches_section_6_6_shape() {
    let cmesh = run(SchemeKind::InterposerCMesh, "gaussian", 0.05);
    let eq = run(SchemeKind::EquiNox, "gaussian", 0.05);
    assert_eq!(cmesh.ubumps, 32_768, "paper's CMesh count");
    assert!(eq.ubumps > 0);
    assert!(
        (eq.ubumps as f64) < 0.35 * cmesh.ubumps as f64,
        "EquiNox {} vs CMesh {} — paper reports 81.25% saving",
        eq.ubumps,
        cmesh.ubumps
    );
}

#[test]
fn area_ordering_matches_figure_11() {
    let single = run(SchemeKind::SingleBase, "gaussian", 0.02).area_mm2;
    let separate = run(SchemeKind::SeparateBase, "gaussian", 0.02).area_mm2;
    let da2 = run(SchemeKind::Da2Mesh, "gaussian", 0.02).area_mm2;
    let cmesh = run(SchemeKind::InterposerCMesh, "gaussian", 0.02).area_mm2;
    let eq = run(SchemeKind::EquiNox, "gaussian", 0.02).area_mm2;
    assert!(single < separate, "single nets are smaller");
    assert!(da2 < separate, "DA2Mesh's narrow routers are cheaper");
    assert!(cmesh > separate, "CMesh routers dominate Figure 11");
    assert!(eq > separate && eq < separate * 1.25, "EquiNox adds a few percent");
}

#[test]
fn latency_split_shows_backpressure() {
    // §6.4: request latency exceeds reply latency because reply-injection
    // congestion backpressures the request network (the parking-lot
    // effect).
    let m = run(SchemeKind::SeparateBase, "kmeans", 0.15);
    assert!(
        m.latency.request_ns() > m.latency.reply_ns(),
        "request {} !> reply {}",
        m.latency.request_ns(),
        m.latency.reply_ns()
    );
}
